//! Quality-of-service specification, compatibility checking and
//! negotiation.
//!
//! The paper (§4.2.2 ii): *"In the Computational Viewpoint, it is
//! necessary to support the expression of desired levels of QoS ...
//! Facilities are required for negotiation of QoS levels between remote
//! peers and also for end-to-end monitoring of QoS so that the
//! application can be informed if degradations occur. Dynamic
//! re-negotiation should also be supported."* And §4.2.2 (mobility):
//! *"quality of service requests \[should\] specify accepted levels of
//! disconnection".*

use std::fmt;

use odp_sim::net::{Connectivity, LinkQos};
use odp_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A QoS contract for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Required frames (or samples) per second.
    pub throughput_fps: u32,
    /// Maximum acceptable end-to-end delay.
    pub latency_bound: SimDuration,
    /// Maximum acceptable delay variance (jitter, standard deviation).
    pub jitter_bound: SimDuration,
    /// Maximum acceptable fraction of frames lost or late, in `[0, 1]`.
    pub loss_bound: f64,
    /// The weakest connectivity level under which the contract still
    /// applies (mobile hosts): below this, violation reporting pauses.
    pub min_connectivity: Connectivity,
}

impl QosSpec {
    /// Broadcast-quality video: 25 fps, 150 ms latency, 30 ms jitter,
    /// 1% loss.
    pub fn video() -> Self {
        QosSpec {
            throughput_fps: 25,
            latency_bound: SimDuration::from_millis(150),
            jitter_bound: SimDuration::from_millis(30),
            loss_bound: 0.01,
            min_connectivity: Connectivity::Full,
        }
    }

    /// Telephone-quality audio: 50 packets/s, 100 ms latency, 20 ms
    /// jitter, 2% loss.
    pub fn audio() -> Self {
        QosSpec {
            throughput_fps: 50,
            latency_bound: SimDuration::from_millis(100),
            jitter_bound: SimDuration::from_millis(20),
            loss_bound: 0.02,
            min_connectivity: Connectivity::Full,
        }
    }

    /// Degraded "mobile" video: 5 fps, 500 ms latency, tolerant of
    /// partial connectivity.
    pub fn mobile_video() -> Self {
        QosSpec {
            throughput_fps: 5,
            latency_bound: SimDuration::from_millis(500),
            jitter_bound: SimDuration::from_millis(150),
            loss_bound: 0.10,
            min_connectivity: Connectivity::Partial,
        }
    }

    /// The accept-anything requirement: 1 fps, ten-second bounds, total
    /// loss tolerated, valid down to full disconnection. Importers that
    /// only care about *finding* a service (not its quality) negotiate
    /// against this; every real offer satisfies it.
    pub fn permissive() -> Self {
        QosSpec {
            throughput_fps: 1,
            latency_bound: SimDuration::from_secs(10),
            jitter_bound: SimDuration::from_secs(10),
            loss_bound: 1.0,
            min_connectivity: Connectivity::Disconnected,
        }
    }

    /// This contract as observed *across* a path charging `path`
    /// degradation: the latency and jitter bounds the far side can
    /// actually hold here widen by the path's share, and loss compounds
    /// as independent stages (`1 - (1-spec)(1-path)`). Throughput and
    /// connectivity are capacity/validity constraints, not per-hop
    /// charges, and pass through unchanged.
    ///
    /// A zero-loss path leaves `loss_bound` bit-identical (no
    /// floating-point drift), so degrading across [`LinkQos::NONE`] is
    /// the exact identity. The result is monotonically non-improving in
    /// the path: composing more hops never tightens a bound.
    pub fn degrade_across(&self, path: &LinkQos) -> QosSpec {
        let loss_bound = if path.loss == 0.0 {
            self.loss_bound
        } else {
            (1.0 - (1.0 - self.loss_bound) * (1.0 - path.loss)).clamp(0.0, 1.0)
        };
        QosSpec {
            throughput_fps: self.throughput_fps,
            latency_bound: self.latency_bound + path.latency,
            jitter_bound: self.jitter_bound + path.jitter,
            loss_bound,
            min_connectivity: self.min_connectivity,
        }
    }

    /// True if a stream delivered at `self` also satisfies `required`
    /// (i.e. `self` is at least as good in every dimension).
    pub fn satisfies(&self, required: &QosSpec) -> bool {
        self.throughput_fps >= required.throughput_fps
            && self.latency_bound <= required.latency_bound
            && self.jitter_bound <= required.jitter_bound
            && self.loss_bound <= required.loss_bound
    }

    /// One step down the degradation ladder: halve the frame rate and
    /// relax the bounds by 50%. Returns `None` below 1 fps (nothing left
    /// to negotiate away).
    pub fn degraded(&self) -> Option<QosSpec> {
        if self.throughput_fps <= 1 {
            return None;
        }
        Some(QosSpec {
            throughput_fps: (self.throughput_fps / 2).max(1),
            latency_bound: self.latency_bound.mul_f64(1.5),
            jitter_bound: self.jitter_bound.mul_f64(1.5),
            loss_bound: (self.loss_bound * 1.5).min(1.0),
            min_connectivity: self.min_connectivity,
        })
    }

    /// One step *up* the ladder — the inverse of [`QosSpec::degraded`],
    /// clamped so the result never promises more than `ceiling` (the
    /// originally negotiated contract). Returns `None` when already at
    /// the ceiling. Used for upward re-negotiation once a degraded link
    /// recovers.
    pub fn upgraded(&self, ceiling: &QosSpec) -> Option<QosSpec> {
        if self.satisfies(ceiling) {
            return None; // already at (or above) the ceiling
        }
        let candidate = QosSpec {
            throughput_fps: (self.throughput_fps * 2).min(ceiling.throughput_fps),
            latency_bound: self
                .latency_bound
                .mul_f64(1.0 / 1.5)
                .max(ceiling.latency_bound),
            jitter_bound: self
                .jitter_bound
                .mul_f64(1.0 / 1.5)
                .max(ceiling.jitter_bound),
            loss_bound: (self.loss_bound / 1.5).max(ceiling.loss_bound),
            min_connectivity: self.min_connectivity,
        };
        Some(candidate)
    }
}

impl fmt::Display for QosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}fps lat<={} jit<={} loss<={:.1}%",
            self.throughput_fps,
            self.latency_bound,
            self.jitter_bound,
            self.loss_bound * 100.0
        )
    }
}

/// The result of negotiating a consumer's requirement against a
/// producer's offer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NegotiationOutcome {
    /// The offer meets the requirement; the agreed contract is returned.
    Agreed(QosSpec),
    /// The producer cannot meet the requirement even degraded; the best
    /// offer is returned for the application to accept or abandon.
    BestEffortOnly(QosSpec),
}

/// Negotiates: if `offer` satisfies `required`, agree on `required`
/// (never promise more than asked). Otherwise walk `required` down its
/// degradation ladder until the offer satisfies it; if even the floor is
/// unmet, report best-effort.
pub fn negotiate(offer: &QosSpec, required: &QosSpec) -> NegotiationOutcome {
    if offer.satisfies(required) {
        return NegotiationOutcome::Agreed(*required);
    }
    let mut candidate = *required;
    while let Some(next) = candidate.degraded() {
        candidate = next;
        if offer.satisfies(&candidate) {
            return NegotiationOutcome::Agreed(candidate);
        }
    }
    NegotiationOutcome::BestEffortOnly(*offer)
}

/// Which dimension of a contract was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Delivered rate fell below the contract.
    Throughput,
    /// End-to-end delay exceeded the bound.
    Latency,
    /// Jitter exceeded the bound.
    Jitter,
    /// Loss fraction exceeded the bound.
    Loss,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Throughput => "throughput",
            ViolationKind::Latency => "latency",
            ViolationKind::Jitter => "jitter",
            ViolationKind::Loss => "loss",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_specs_satisfy_each_other() {
        let v = QosSpec::video();
        assert!(v.satisfies(&v));
    }

    #[test]
    fn better_offer_satisfies_weaker_requirement() {
        let strong = QosSpec {
            throughput_fps: 50,
            latency_bound: SimDuration::from_millis(50),
            jitter_bound: SimDuration::from_millis(5),
            loss_bound: 0.0,
            min_connectivity: Connectivity::Full,
        };
        assert!(strong.satisfies(&QosSpec::video()));
        assert!(!QosSpec::video().satisfies(&strong));
    }

    #[test]
    fn negotiation_agrees_on_the_requirement_when_met() {
        let offer = QosSpec {
            throughput_fps: 100,
            latency_bound: SimDuration::from_millis(10),
            jitter_bound: SimDuration::from_millis(1),
            loss_bound: 0.0,
            min_connectivity: Connectivity::Full,
        };
        assert_eq!(
            negotiate(&offer, &QosSpec::video()),
            NegotiationOutcome::Agreed(QosSpec::video())
        );
    }

    #[test]
    fn negotiation_degrades_to_a_meetable_contract() {
        // Offer can only do 8 fps with loose bounds.
        let offer = QosSpec {
            throughput_fps: 8,
            latency_bound: SimDuration::from_millis(400),
            jitter_bound: SimDuration::from_millis(100),
            loss_bound: 0.05,
            min_connectivity: Connectivity::Full,
        };
        match negotiate(&offer, &QosSpec::video()) {
            NegotiationOutcome::Agreed(spec) => {
                assert!(spec.throughput_fps <= 8);
                assert!(offer.satisfies(&spec));
            }
            other => panic!("expected degraded agreement, got {other:?}"),
        }
    }

    #[test]
    fn hopeless_offers_fall_back_to_best_effort() {
        let offer = QosSpec {
            throughput_fps: 1,
            latency_bound: SimDuration::from_secs(10),
            jitter_bound: SimDuration::from_secs(10),
            loss_bound: 1.0,
            min_connectivity: Connectivity::Partial,
        };
        assert!(matches!(
            negotiate(&offer, &QosSpec::audio()),
            NegotiationOutcome::BestEffortOnly(_)
        ));
    }

    #[test]
    fn upgrade_climbs_back_to_the_ceiling() {
        let ceiling = QosSpec::video();
        let mut spec = ceiling;
        while let Some(next) = spec.degraded() {
            spec = next;
        }
        assert_eq!(spec.throughput_fps, 1);
        let mut climbs = 0;
        while let Some(up) = spec.upgraded(&ceiling) {
            assert!(up.throughput_fps >= spec.throughput_fps);
            assert!(up.latency_bound <= spec.latency_bound);
            spec = up;
            climbs += 1;
            assert!(climbs < 64, "ladder up terminates");
        }
        assert!(
            spec.satisfies(&ceiling),
            "restored the original contract: {spec}"
        );
    }

    #[test]
    fn upgrade_at_ceiling_is_none() {
        let v = QosSpec::video();
        assert_eq!(v.upgraded(&v), None);
    }

    #[test]
    fn degrade_across_widens_bounds_and_compounds_loss() {
        let path = LinkQos::new(
            SimDuration::from_millis(40),
            SimDuration::from_millis(10),
            0.01,
        );
        let seen = QosSpec::video().degrade_across(&path);
        assert_eq!(seen.latency_bound, SimDuration::from_millis(190));
        assert_eq!(seen.jitter_bound, SimDuration::from_millis(40));
        // 1 - 0.99 * 0.99
        assert!((seen.loss_bound - 0.0199).abs() < 1e-12);
        assert_eq!(seen.throughput_fps, QosSpec::video().throughput_fps);
        assert!(
            !seen.satisfies(&QosSpec::video()),
            "a penalized offer is strictly weaker"
        );
    }

    #[test]
    fn degrade_across_the_identity_is_exact() {
        let v = QosSpec::video();
        assert_eq!(v.degrade_across(&LinkQos::NONE), v);
    }

    #[test]
    fn degrade_across_is_monotonically_non_improving() {
        let hop = LinkQos::new(
            SimDuration::from_millis(15),
            SimDuration::from_millis(3),
            0.02,
        );
        let mut path = LinkQos::NONE;
        let mut prev = QosSpec::video();
        for _ in 0..5 {
            path = path.then(hop);
            let seen = QosSpec::video().degrade_across(&path);
            assert!(
                prev.satisfies(&seen) || prev == seen,
                "adding a hop must never improve the contract"
            );
            assert!(seen.latency_bound >= prev.latency_bound);
            assert!(seen.loss_bound >= prev.loss_bound);
            prev = seen;
        }
    }

    #[test]
    fn every_preset_satisfies_the_permissive_requirement() {
        for offer in [QosSpec::video(), QosSpec::audio(), QosSpec::mobile_video()] {
            assert!(offer.satisfies(&QosSpec::permissive()));
        }
    }

    #[test]
    fn degradation_ladder_terminates() {
        let mut spec = QosSpec::video();
        let mut steps = 0;
        while let Some(next) = spec.degraded() {
            assert!(next.throughput_fps <= spec.throughput_fps);
            assert!(next.latency_bound >= spec.latency_bound);
            spec = next;
            steps += 1;
            assert!(steps < 64, "ladder must terminate");
        }
        assert_eq!(spec.throughput_fps, 1);
    }
}
