//! Simulator actors for continuous-media streaming: a paced source, a
//! monitoring sink that reports violations upstream, and a source-side
//! renegotiation loop — the full QoS-management cycle of §4.2.2
//! (negotiate → monitor → inform → re-negotiate).

use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::{Carrier, SpanContext};

use crate::media::{Frame, MediaSink, MediaSource};
use crate::monitor::{QosMonitor, Violation};
use crate::qos::QosSpec;

/// Wire messages between stream endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamMsg {
    /// A media frame.
    Frame(Frame),
    /// Sink → source: the contract broke.
    ViolationReport(Violation),
    /// Sink → source: the (degraded) contract has been healthy for a
    /// while — the source may try to renegotiate upward.
    HealthReport,
    /// Source → sink: new contract after renegotiation.
    NewContract(QosSpec),
    /// Harness/host → sink: the sink's host changed connectivity level
    /// (mobile hosts). Below the contract's accepted level, monitoring is
    /// suspended rather than violated.
    ConnectivityChanged(Connectivity),
}

impl Carrier for StreamMsg {
    fn span(&self) -> Option<SpanContext> {
        match self {
            StreamMsg::Frame(f) => f.span(),
            _ => None,
        }
    }

    fn set_span(&mut self, span: Option<SpanContext>) {
        if let StreamMsg::Frame(f) = self {
            f.set_span(span);
        }
    }
}

const SEND: u64 = 1;
const PLAY: u64 = 2;
const BEACON: u64 = 3;

/// A paced media source; degrades its rate when sinks report violations
/// (dynamic renegotiation).
pub struct SourceActor {
    source: MediaSource,
    consumers: Vec<NodeId>,
    contract: QosSpec,
    /// The originally negotiated contract — the ceiling for upward
    /// renegotiation.
    original: QosSpec,
    renegotiations: u64,
    upgrades: u64,
    /// No further contract change until this long after the last one
    /// (prevents oscillation between up- and down-steps).
    change_cooldown: SimDuration,
    last_change: Option<SimTime>,
    /// If false, violations are ignored (the E6 "no renegotiation"
    /// baseline).
    adaptive: bool,
    telemetry: bool,
}

impl SourceActor {
    /// Creates a source streaming to `consumers` under `contract`.
    pub fn new(source: MediaSource, consumers: Vec<NodeId>, contract: QosSpec) -> Self {
        SourceActor {
            source,
            consumers,
            contract,
            original: contract,
            renegotiations: 0,
            upgrades: 0,
            change_cooldown: SimDuration::from_secs(5),
            last_change: None,
            adaptive: true,
            telemetry: false,
        }
    }

    /// Disables adaptation (violations are received but ignored).
    pub fn disable_adaptation(&mut self) {
        self.adaptive = false;
    }

    /// Enables span telemetry. Off by default: minting spans draws from
    /// the actor's RNG stream, which would perturb existing seeded runs.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Contracts renegotiated downward so far.
    pub fn renegotiations(&self) -> u64 {
        self.renegotiations
    }

    /// Contracts renegotiated upward so far.
    pub fn upgrades(&self) -> u64 {
        self.upgrades
    }

    /// The current contract.
    pub fn contract(&self) -> &QosSpec {
        &self.contract
    }

    fn cooling(&self, now: SimTime) -> bool {
        self.last_change
            .is_some_and(|at| now.saturating_since(at) < self.change_cooldown)
    }

    fn announce(&mut self, ctx: &mut Ctx<'_, StreamMsg>, spec: QosSpec) {
        self.contract = spec;
        self.source.set_fps(spec.throughput_fps);
        self.last_change = Some(ctx.now());
        for &c in &self.consumers {
            ctx.send(c, StreamMsg::NewContract(spec));
        }
    }
}

impl Actor<StreamMsg> for SourceActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, StreamMsg>) {
        ctx.set_timer(self.source.interval(), SEND);
        // Contract beacon: a NewContract announcement can be lost on the
        // very link whose degradation triggered it, which would wedge the
        // control loop — so the current contract is re-announced as soft
        // state every couple of seconds.
        ctx.set_timer(SimDuration::from_secs(2), BEACON);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StreamMsg>, _from: NodeId, msg: StreamMsg) {
        match msg {
            StreamMsg::ViolationReport(v) => {
                ctx.metrics().incr("stream.violation_reports");
                // QoS violations are rare control events, not the
                // per-frame path.
                // odp-check: allow(hot-path-alloc)
                ctx.trace("qos.violation", format!("{:?}", v.kind));
                if self.adaptive && !self.cooling(ctx.now()) {
                    if let Some(degraded) = self.contract.degraded() {
                        self.renegotiations += 1;
                        ctx.metrics().incr("stream.renegotiations");
                        // Renegotiations are rarer still (cooldown-gated).
                        // odp-check: allow(hot-path-alloc)
                        ctx.trace("qos.renegotiated", degraded.to_string());
                        self.announce(ctx, degraded);
                    }
                }
            }
            StreamMsg::HealthReport if self.adaptive && !self.cooling(ctx.now()) => {
                if let Some(upgraded) = self.contract.upgraded(&self.original) {
                    self.upgrades += 1;
                    ctx.metrics().incr("stream.upgrades");
                    // Upgrades are cooldown-gated control events.
                    // odp-check: allow(hot-path-alloc)
                    ctx.trace("qos.upgraded", upgraded.to_string());
                    self.announce(ctx, upgraded);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StreamMsg>, _timer: TimerId, tag: u64) {
        match tag {
            SEND => {
                let mut frame = self.source.next_frame(ctx.now());
                // Frame span: a root per frame, closed at emission (the
                // source cannot know arrival times); each sink hangs a
                // stream.recv child off it as the frame lands.
                if self.telemetry {
                    let root = SpanContext::root(ctx.rng());
                    ctx.span_open(root.carrier(), "stream.frame");
                    ctx.span_close(root.carrier());
                    frame.span = Some(root);
                }
                ctx.metrics().incr("stream.frames_sent");
                for &c in &self.consumers {
                    ctx.send_sized(c, StreamMsg::Frame(frame), frame.bytes);
                }
                ctx.set_timer(self.source.interval(), SEND);
            }
            BEACON => {
                for &c in &self.consumers {
                    ctx.send(c, StreamMsg::NewContract(self.contract));
                }
                ctx.set_timer(SimDuration::from_secs(2), BEACON);
            }
            _ => {}
        }
    }
}

/// A playout sink with an attached QoS monitor; reports violations back
/// to the source.
pub struct SinkActor {
    sink: MediaSink,
    monitor: QosMonitor,
    source_node: NodeId,
    play_every: SimDuration,
    health_report_every: SimDuration,
    last_health_report: Option<SimTime>,
    /// The latched violation, re-sent periodically while it persists —
    /// a single report can be lost on the very link that is violating.
    last_violation: Option<(Violation, SimTime)>,
    telemetry: bool,
}

impl SinkActor {
    /// Creates a sink playing frames from `source_node`.
    pub fn new(sink: MediaSink, monitor: QosMonitor, source_node: NodeId) -> Self {
        SinkActor {
            sink,
            monitor,
            source_node,
            play_every: SimDuration::from_millis(10),
            health_report_every: SimDuration::from_secs(2),
            last_health_report: None,
            last_violation: None,
            telemetry: false,
        }
    }

    /// Enables span telemetry. Off by default: minting spans draws from
    /// the actor's RNG stream, which would perturb existing seeded runs.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// The playout sink (post-run inspection).
    pub fn sink(&self) -> &MediaSink {
        &self.sink
    }

    /// The monitor (post-run inspection).
    pub fn monitor(&self) -> &QosMonitor {
        &self.monitor
    }
}

impl Actor<StreamMsg> for SinkActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, StreamMsg>) {
        ctx.set_timer(self.play_every, PLAY);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StreamMsg>, _from: NodeId, msg: StreamMsg) {
        match msg {
            StreamMsg::Frame(frame) => {
                ctx.metrics().incr("stream.frames_received");
                // Receive span: a child of the frame's root, marking the
                // arrival at this sink.
                if self.telemetry {
                    if let Some(parent) = frame.span {
                        let recv = parent.child(ctx.rng());
                        ctx.span_open(recv.carrier(), "stream.recv");
                        ctx.span_close(recv.carrier());
                    }
                }
                self.sink.arrive(frame, ctx.now());
            }
            StreamMsg::NewContract(spec) => {
                self.monitor.set_contract(spec);
                // Contract changes are rare control events, not the
                // per-frame path.
                // odp-check: allow(hot-path-alloc)
                ctx.trace("qos.contract_updated", spec.to_string());
            }
            StreamMsg::ConnectivityChanged(level) => {
                self.monitor.set_connectivity(level);
                // As above: connectivity flips are rare control events.
                // odp-check: allow(hot-path-alloc)
                ctx.trace("qos.connectivity", format!("{level:?}"));
            }
            StreamMsg::ViolationReport(_) | StreamMsg::HealthReport => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StreamMsg>, _timer: TimerId, tag: u64) {
        if tag != PLAY {
            return;
        }
        let records = self.sink.play_until(ctx.now());
        for r in &records {
            if let Some(d) = r.delay {
                ctx.metrics().observe("stream.frame_delay", d);
            }
        }
        if let Some(violation) = self.monitor.observe(&records, ctx.now()) {
            ctx.metrics().incr("stream.violations_detected");
            ctx.send(
                self.source_node,
                StreamMsg::ViolationReport(violation.clone()),
            );
            self.last_violation = Some((violation, ctx.now()));
        } else if self.monitor.is_in_violation() {
            // Re-send the latched violation as soft state: the first
            // report can be lost on the very link that is failing.
            if let Some((violation, sent_at)) = self.last_violation.clone() {
                if ctx.now().saturating_since(sent_at) >= self.health_report_every {
                    ctx.send(
                        self.source_node,
                        StreamMsg::ViolationReport(violation.clone()),
                    );
                    self.last_violation = Some((violation, ctx.now()));
                }
            }
        } else {
            self.last_violation = None;
            let due = self
                .last_health_report
                .is_none_or(|at| ctx.now().saturating_since(at) >= self.health_report_every);
            if due {
                self.last_health_report = Some(ctx.now());
                ctx.send(self.source_node, StreamMsg::HealthReport);
            }
        }
        ctx.set_timer(self.play_every, PLAY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{MediaKind, StreamId};
    use odp_sim::prelude::*;
    use odp_telemetry::span::{CLOSE, OPEN};

    fn stream_sim(link: LinkSpec, adaptive: bool) -> Sim<StreamMsg> {
        let mut net = Network::new(link);
        net.set_default_link(link);
        let mut sim = SimBuilder::new(42).network(net).build();
        let contract = QosSpec::video();
        let src = MediaSource::new(StreamId(0), MediaKind::Video, 25, 4_000);
        let mut source = SourceActor::new(src, vec![NodeId(1)], contract);
        if !adaptive {
            source.disable_adaptation();
        }
        sim.add_actor(NodeId(0), source);
        let sink = MediaSink::new(StreamId(0), SimDuration::from_millis(120));
        let monitor = QosMonitor::new(contract, SimDuration::from_secs(1));
        sim.add_actor(NodeId(1), SinkActor::new(sink, monitor, NodeId(0)));
        sim
    }

    #[test]
    fn telemetry_spans_link_frames_to_arrivals() {
        let mut net = Network::new(LinkSpec::lan());
        net.set_default_link(LinkSpec::lan());
        let mut sim: Sim<StreamMsg> = SimBuilder::new(42).network(net).build();
        let contract = QosSpec::video();
        let src = MediaSource::new(StreamId(0), MediaKind::Video, 25, 4_000);
        let mut source = SourceActor::new(src, vec![NodeId(1)], contract);
        source.set_telemetry(true);
        sim.add_actor(NodeId(0), source);
        let sink = MediaSink::new(StreamId(0), SimDuration::from_millis(120));
        let monitor = QosMonitor::new(contract, SimDuration::from_secs(1));
        let mut sink_actor = SinkActor::new(sink, monitor, NodeId(0));
        sink_actor.set_telemetry(true);
        sim.add_actor(NodeId(1), sink_actor);
        sim.run(Until::For(SimDuration::from_secs(1)));

        let collector = odp_telemetry::collector::Collector::from_trace(sim.trace());
        assert_eq!(collector.well_formed(), Ok(()), "span audit must pass");
        assert!(collector.len() >= 20, "one trace per frame at 25 fps");
        let mut delivered = 0;
        for (_, dag) in collector.traces() {
            // On a healthy LAN every emitted frame arrives: each trace is
            // a stream.frame root with one stream.recv child — except a
            // frame still in flight when the horizon cut the run short.
            assert!(dag.len() <= 2);
            if dag.len() == 2 {
                delivered += 1;
                let kinds: Vec<&str> = dag
                    .critical_path()
                    .iter()
                    .map(|s| s.kind.as_str())
                    .collect();
                assert_eq!(kinds, ["stream.frame", "stream.recv"]);
            }
        }
        assert!(delivered >= 20, "only {delivered} frames delivered");
    }

    #[test]
    fn telemetry_off_emits_no_stream_span_events() {
        let mut sim = stream_sim(LinkSpec::lan(), true);
        sim.run(Until::For(SimDuration::from_secs(1)));
        assert_eq!(sim.trace().with_label(OPEN).count(), 0);
        assert_eq!(sim.trace().with_label(CLOSE).count(), 0);
    }

    #[test]
    fn healthy_link_streams_without_violations() {
        let mut sim = stream_sim(LinkSpec::lan(), true);
        sim.run(Until::For(SimDuration::from_secs(10)));
        let sink: &SinkActor = sim.get(ActorHandle::of(NodeId(1))).unwrap();
        assert!(
            sink.sink().integrity() > 0.99,
            "integrity {}",
            sink.sink().integrity()
        );
        assert_eq!(sim.metrics().counter("stream.renegotiations"), 0);
    }

    #[test]
    fn degraded_link_triggers_violation_and_renegotiation() {
        // A terrible link: 300 ms latency, heavy jitter, low bandwidth.
        let bad = LinkSpec {
            latency: SimDuration::from_millis(300),
            jitter: SimDuration::from_millis(80),
            bytes_per_sec: Some(40_000),
            loss: 0.05,
        };
        let mut sim = stream_sim(bad, true);
        sim.run(Until::For(SimDuration::from_secs(20)));
        assert!(sim.metrics().counter("stream.violation_reports") >= 1);
        let source: &SourceActor = sim.get(ActorHandle::of(NodeId(0))).unwrap();
        assert!(source.renegotiations() >= 1, "source adapted");
        assert!(source.contract().throughput_fps < 25, "rate reduced");
    }

    #[test]
    fn without_renegotiation_violations_persist() {
        let bad = LinkSpec {
            latency: SimDuration::from_millis(300),
            jitter: SimDuration::from_millis(80),
            bytes_per_sec: Some(40_000),
            loss: 0.05,
        };
        let mut sim = stream_sim(bad, false);
        sim.run(Until::For(SimDuration::from_secs(20)));
        let source: &SourceActor = sim.get(ActorHandle::of(NodeId(0))).unwrap();
        assert_eq!(source.renegotiations(), 0);
        let sink: &SinkActor = sim.get(ActorHandle::of(NodeId(1))).unwrap();
        assert!(sink.sink().integrity() < 0.9, "integrity stays damaged");
    }

    #[test]
    fn link_recovery_renegotiates_the_contract_back_up() {
        let mut sim = stream_sim(LinkSpec::lan(), true);
        let bad = LinkSpec {
            latency: SimDuration::from_millis(300),
            jitter: SimDuration::from_millis(80),
            bytes_per_sec: Some(40_000),
            loss: 0.05,
        };
        sim.schedule_net_change(SimTime::from_secs(5), move |net| {
            net.set_link(NodeId(0), NodeId(1), bad);
        });
        sim.schedule_net_change(SimTime::from_secs(30), |net| {
            net.set_link(NodeId(0), NodeId(1), LinkSpec::lan());
        });
        sim.run(Until::For(SimDuration::from_secs(120)));
        let source: &SourceActor = sim.get(ActorHandle::of(NodeId(0))).unwrap();
        assert!(source.renegotiations() >= 1, "degraded during the outage");
        assert!(source.upgrades() >= 1, "climbed back after recovery");
        assert_eq!(
            source.contract().throughput_fps,
            25,
            "original contract restored: {}",
            source.contract()
        );
    }

    #[test]
    fn accepted_partial_connectivity_suspends_violations() {
        // Contract tolerant of partial connectivity; host drops to
        // Partial and the (physically degraded) stream is *not* reported.
        let mut net = Network::new(LinkSpec::lan());
        net.set_default_link(LinkSpec::lan());
        let mut sim: Sim<StreamMsg> = SimBuilder::new(9).network(net).build();
        let contract = QosSpec::mobile_video(); // min_connectivity: Partial
        let src = MediaSource::new(StreamId(0), MediaKind::Video, 5, 500);
        sim.add_actor(NodeId(0), SourceActor::new(src, vec![NodeId(1)], contract));
        let sink = MediaSink::new(StreamId(0), SimDuration::from_millis(400));
        let monitor = QosMonitor::new(contract, SimDuration::from_secs(1));
        sim.add_actor(NodeId(1), SinkActor::new(sink, monitor, NodeId(0)));
        // At t=3s the host drops below even Partial: Disconnected.
        sim.schedule_net_change(SimTime::from_secs(3), |net| {
            net.set_connectivity(NodeId(1), Connectivity::Disconnected);
        });
        sim.inject(
            SimTime::from_secs(3),
            NodeId(1),
            NodeId(1),
            StreamMsg::ConnectivityChanged(Connectivity::Disconnected),
        );
        sim.run(Until::For(SimDuration::from_secs(15)));
        // The stream physically stalls (total disconnection), but the
        // contract accepts levels down to Partial only — Disconnected is
        // below it, so judgement is suspended: no violations reported.
        assert_eq!(
            sim.metrics().counter("stream.violations_detected"),
            0,
            "accepted disconnection must not violate"
        );
        assert_eq!(sim.metrics().counter("stream.renegotiations"), 0);
    }

    #[test]
    fn mid_run_network_degradation_is_detected() {
        let mut sim = stream_sim(LinkSpec::lan(), true);
        sim.schedule_net_change(SimTime::from_secs(5), |net| {
            net.set_link(
                NodeId(0),
                NodeId(1),
                LinkSpec {
                    latency: SimDuration::from_millis(400),
                    jitter: SimDuration::from_millis(100),
                    bytes_per_sec: Some(30_000),
                    loss: 0.05,
                },
            );
        });
        sim.run(Until::For(SimDuration::from_secs(25)));
        assert!(sim.trace().with_label("qos.violation").count() >= 1);
        assert!(sim.trace().with_label("qos.renegotiated").count() >= 1);
        // The violation was detected only after the change.
        let first = sim.trace().first("qos.violation").unwrap();
        assert!(first.time >= SimTime::from_secs(5));
    }
}
