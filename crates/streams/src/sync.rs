//! Real-time synchronisation (§4.2.2 iii): *event-driven* synchronisation
//! ("initiate an action, such as displaying a caption, at a particular
//! point in time") and *continuous* synchronisation ("data presentation
//! devices must be tied together so that they consume data in fixed
//! ratios, e.g. in lip synchronisation").

use std::collections::BTreeMap;

use odp_sim::time::{SimDuration, SimTime};

use crate::media::{MediaSink, PlayoutRecord};

/// A scheduled event-driven action (e.g. show a caption at t).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Arbitrary action label.
    pub action: String,
    /// The instant it must fire.
    pub due: SimTime,
}

/// Tracks event-driven synchronisation accuracy: schedule actions, record
/// when they actually fired, and measure the skew.
#[derive(Debug, Clone, Default)]
pub struct EventSync {
    scheduled: Vec<ScheduledEvent>,
    fired: Vec<(ScheduledEvent, SimTime)>,
}

impl EventSync {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        EventSync::default()
    }

    /// Schedules an action.
    pub fn schedule(&mut self, action: impl Into<String>, due: SimTime) {
        self.scheduled.push(ScheduledEvent {
            action: action.into(),
            due,
        });
    }

    /// Actions due at or before `now` that have not fired yet; marks them
    /// fired at `now`.
    pub fn fire_due(&mut self, now: SimTime) -> Vec<ScheduledEvent> {
        let mut due = Vec::new();
        let mut keep = Vec::new();
        for ev in self.scheduled.drain(..) {
            if ev.due <= now {
                self.fired.push((ev.clone(), now));
                due.push(ev);
            } else {
                keep.push(ev);
            }
        }
        self.scheduled = keep;
        due
    }

    /// Firing skews (actual − due) of every fired action.
    pub fn skews(&self) -> Vec<SimDuration> {
        self.fired
            .iter()
            .map(|(ev, at)| at.saturating_since(ev.due))
            .collect()
    }

    /// Actions still waiting.
    pub fn pending(&self) -> usize {
        self.scheduled.len()
    }
}

/// Continuous synchronisation of a slave stream to a master stream
/// (lip-sync): both sinks play out; the controller measures the playout
/// skew and nudges the slave's playout delay to keep the skew inside a
/// tolerance.
///
/// # Examples
///
/// ```
/// use odp_streams::media::{MediaSink, StreamId};
/// use odp_streams::sync::LipSync;
/// use odp_sim::time::SimDuration;
///
/// let audio = MediaSink::new(StreamId(0), SimDuration::from_millis(80));
/// let video = MediaSink::new(StreamId(1), SimDuration::from_millis(80));
/// let sync = LipSync::new(audio, video, SimDuration::from_millis(80));
/// assert_eq!(sync.skew_samples().len(), 0);
/// ```
#[derive(Debug)]
pub struct LipSync {
    /// The master (usually audio — the ear is less forgiving).
    master: MediaSink,
    /// The slave (usually video).
    slave: MediaSink,
    /// Maximum acceptable |skew| before correction.
    tolerance: SimDuration,
    /// Whether correction is enabled (disable for the E7 baseline).
    correcting: bool,
    /// Playout-time of the latest played frame per stream.
    last_master_play: BTreeMap<u64, SimTime>,
    last_slave_play: BTreeMap<u64, SimTime>,
    skews: Vec<i64>, // microseconds, signed (slave − master)
    corrections: u64,
    /// No further correction until this long after the previous one, so
    /// frames already in the pipeline (played against the old delay) do
    /// not trigger runaway over-correction.
    cooldown: SimDuration,
    last_correction: Option<SimTime>,
}

impl LipSync {
    /// Creates a synchroniser; `tolerance` is the lip-sync budget
    /// (±80 ms is the classic figure).
    pub fn new(master: MediaSink, slave: MediaSink, tolerance: SimDuration) -> Self {
        LipSync {
            master,
            slave,
            tolerance,
            correcting: true,
            last_master_play: BTreeMap::new(),
            last_slave_play: BTreeMap::new(),
            skews: Vec::new(),
            corrections: 0,
            cooldown: SimDuration::from_millis(500),
            last_correction: None,
        }
    }

    /// Adjusts the correction cooldown (default 500 ms).
    pub fn set_cooldown(&mut self, cooldown: SimDuration) {
        self.cooldown = cooldown;
    }

    /// Disables the correction loop (measure raw drift instead).
    pub fn disable_correction(&mut self) {
        self.correcting = false;
    }

    /// The master sink.
    pub fn master_mut(&mut self) -> &mut MediaSink {
        &mut self.master
    }

    /// The slave sink.
    pub fn slave_mut(&mut self) -> &mut MediaSink {
        &mut self.slave
    }

    /// Advances both playouts to `now`, measures the skew between frames
    /// with equal sequence numbers, and (if enabled) corrects the slave's
    /// playout delay when the skew exceeds the tolerance.
    pub fn tick(&mut self, now: SimTime) -> (Vec<PlayoutRecord>, Vec<PlayoutRecord>) {
        let m = self.master.play_until(now);
        let s = self.slave.play_until(now);
        // Late frames are still presented (just late), so they count for
        // skew; only lost frames are excluded.
        for r in &m {
            if r.fate != crate::media::FrameFate::Lost {
                self.last_master_play.insert(r.seq, now);
            }
        }
        for r in &s {
            if r.fate != crate::media::FrameFate::Lost {
                self.last_slave_play.insert(r.seq, now);
            }
        }
        // Measure skew on matching sequence numbers played by both sides.
        let common: Vec<u64> = self
            .last_master_play
            .keys()
            .filter(|k| self.last_slave_play.contains_key(k))
            .copied()
            .collect();
        for seq in common {
            let (Some(tm), Some(ts)) = (
                self.last_master_play.remove(&seq),
                self.last_slave_play.remove(&seq),
            ) else {
                continue;
            };
            let skew_us = ts.as_micros() as i64 - tm.as_micros() as i64;
            self.skews.push(skew_us);
            let cooling = self
                .last_correction
                .is_some_and(|at| now.saturating_since(at) < self.cooldown);
            if self.correcting && !cooling && skew_us.unsigned_abs() > self.tolerance.as_micros() {
                // A stream can be delayed but never sped up: hold back
                // whichever side is *ahead* by half the skew.
                let adjust = SimDuration::from_micros(skew_us.unsigned_abs() / 2);
                if skew_us > 0 {
                    // Slave is behind: delay the master to meet it.
                    let d = self.master.playout_delay() + adjust;
                    self.master.set_playout_delay(d);
                } else {
                    // Slave is ahead: delay the slave.
                    let d = self.slave.playout_delay() + adjust;
                    self.slave.set_playout_delay(d);
                }
                self.corrections += 1;
                self.last_correction = Some(now);
            }
        }
        (m, s)
    }

    /// Signed skew samples in microseconds (slave − master).
    pub fn skew_samples(&self) -> &[i64] {
        &self.skews
    }

    /// The largest |skew| seen, in microseconds.
    pub fn max_abs_skew(&self) -> u64 {
        self.skews
            .iter()
            .map(|s| s.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Number of corrections applied.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{Frame, MediaKind, StreamId};

    fn frame(stream: u32, seq: u64, captured_ms: u64, kind: MediaKind) -> Frame {
        Frame {
            stream: StreamId(stream),
            seq,
            kind,
            captured: SimTime::from_millis(captured_ms),
            bytes: 100,
            span: None,
        }
    }

    #[test]
    fn event_sync_fires_on_time_and_measures_skew() {
        let mut es = EventSync::new();
        es.schedule("caption-1", SimTime::from_millis(100));
        es.schedule("caption-2", SimTime::from_millis(200));
        assert!(es.fire_due(SimTime::from_millis(50)).is_empty());
        let fired = es.fire_due(SimTime::from_millis(120));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].action, "caption-1");
        assert_eq!(es.pending(), 1);
        es.fire_due(SimTime::from_millis(200));
        let skews = es.skews();
        assert_eq!(skews, vec![SimDuration::from_millis(20), SimDuration::ZERO]);
    }

    /// Drives 40 frames through both sinks (25 fps, 20 ms network delay
    /// for the master, `20 + slave_extra_ms` for the slave), delivering
    /// each frame only once its arrival time passes, and returns the
    /// synchroniser.
    fn run_lipsync(correct: bool, slave_extra_ms: u64) -> LipSync {
        let audio = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        let video = MediaSink::new(StreamId(1), SimDuration::from_millis(100));
        let mut ls = LipSync::new(audio, video, SimDuration::from_millis(80));
        if !correct {
            ls.disable_correction();
        }
        let total = 40u64;
        for now_ms in (0..4_000u64).step_by(20) {
            for seq in 0..total {
                let cap = seq * 40;
                if cap + 20 == now_ms {
                    ls.master_mut().arrive(
                        frame(0, seq, cap, MediaKind::Audio),
                        SimTime::from_millis(now_ms),
                    );
                }
                if cap + 20 + slave_extra_ms == now_ms {
                    ls.slave_mut().arrive(
                        frame(1, seq, cap, MediaKind::Video),
                        SimTime::from_millis(now_ms),
                    );
                }
            }
            ls.tick(SimTime::from_millis(now_ms));
        }
        ls
    }

    #[test]
    fn aligned_streams_have_zero_skew() {
        let ls = run_lipsync(true, 0);
        assert!(!ls.skew_samples().is_empty());
        assert_eq!(ls.max_abs_skew(), 0);
        assert_eq!(ls.corrections(), 0);
    }

    #[test]
    fn lagging_slave_without_correction_drifts() {
        let ls = run_lipsync(false, 200);
        // Slave frames arrive 220 ms after capture but play out against a
        // 100 ms target: a persistent ~120 ms skew with no fix applied.
        assert!(ls.max_abs_skew() >= 100_000, "skew {}us", ls.max_abs_skew());
        assert_eq!(ls.corrections(), 0);
    }

    #[test]
    fn correction_bounds_the_skew() {
        let ls = run_lipsync(true, 200);
        assert!(ls.corrections() > 0, "controller engaged");
        // Once the controller converges, skew sits inside the tolerance.
        let tail: Vec<i64> = ls.skew_samples().iter().rev().take(5).copied().collect();
        let head_max = ls
            .skew_samples()
            .iter()
            .take(5)
            .map(|s| s.unsigned_abs())
            .max()
            .unwrap();
        let tail_max = tail.iter().map(|s| s.unsigned_abs()).max().unwrap();
        assert!(
            tail_max <= 80_000,
            "tail skew {tail_max}us must sit inside the 80ms tolerance (initial {head_max}us)"
        );
    }
}
