#![warn(missing_docs)]

//! # odp-streams — continuous media with QoS management
//!
//! Implements §4.2.2 of the paper ("Multimedia support"): continuous
//! media need (i) representation — [`binding`]'s stream interfaces and
//! bindings; (ii) quality of service — [`qos`]'s specs, compatibility
//! checking and negotiation plus [`monitor`]'s end-to-end monitoring and
//! the renegotiation loop in [`actors`]; (iii) real-time synchronisation
//! — [`sync`]'s event-driven and continuous (lip-sync) mechanisms; and
//! (iv) groups — multicast bindings ([`binding`]) and the group
//! communication in `odp-groupcomm`.
//!
//! ```
//! use odp_streams::qos::{negotiate, NegotiationOutcome, QosSpec};
//!
//! let offer = QosSpec::video();
//! match negotiate(&offer, &QosSpec::video()) {
//!     NegotiationOutcome::Agreed(spec) => assert_eq!(spec.throughput_fps, 25),
//!     NegotiationOutcome::BestEffortOnly(_) => unreachable!(),
//! }
//! ```

pub mod actors;
pub mod binding;
pub mod media;
pub mod monitor;
pub mod qos;
pub mod sync;
pub mod transfer;

pub use actors::{SinkActor, SourceActor, StreamMsg};
pub use binding::{
    BindError, BindingId, BindingRegistry, BindingState, Direction, InterfaceId, StreamBinding,
    StreamInterface,
};
pub use media::{Frame, FrameFate, MediaKind, MediaSink, MediaSource, PlayoutRecord, StreamId};
pub use monitor::{QosMonitor, Violation};
pub use qos::{negotiate, NegotiationOutcome, QosSpec, ViolationKind};
pub use sync::{EventSync, LipSync, ScheduledEvent};
pub use transfer::ChunkPlan;
