//! The MOST-project scenario (paper §3.3.3): a utilities field engineer
//! works across the three connectivity levels — hoarding at the depot,
//! partial connectivity on the road, disconnected on site — then
//! reintegrates, hitting a conflict with an office edit.
//!
//! Run with: `cargo run --example mobile_field_engineer`

use cscw::awareness::bus::EventBus;
use cscw::concurrency::store::{ObjectId, ObjectStore};
use cscw::mobility::host::{MobileHost, Served};
use cscw::mobility::reintegration::{ConflictPolicy, ReplayOutcome};
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::time::SimTime;

fn main() {
    println!("Mobile field engineer — a day in the life");
    println!("==========================================\n");

    let mut office = ObjectStore::new();
    office.create(ObjectId(1), "WO-1: inspect substation 7 feeder");
    office.create(ObjectId(2), "WO-2: replace meter at 14 Elm St");
    office.create(ObjectId(3), "WO-3: survey new cable route");

    let mut engineer = MobileHost::new(ConflictPolicy::ServerWins);
    // The dispatcher (node 0) observes the engineer's (node 1)
    // reintegration conflicts on the cooperation-event bus.
    let mut bus = EventBus::new();
    bus.register(NodeId(0), 0.0);

    // 08:00 — at the depot (fully connected): hoard today's work orders.
    engineer.cache_mut().hoard(ObjectId(1));
    engineer.cache_mut().hoard(ObjectId(2));
    let (report, _) = engineer
        .reconnect_via(&mut bus, NodeId(1), &mut office, SimTime::ZERO)
        .expect("depot network up");
    println!(
        "08:00 depot   : hoarded {} work orders ({} bytes).",
        report.refreshed, report.bulk_bytes
    );

    // 09:00 — on the road (partial/radio): reads come from the cache.
    engineer.set_connectivity(Connectivity::Partial);
    let (wo, served) = engineer.read(ObjectId(1), &mut office).expect("hoarded");
    println!("09:00 radio   : read {wo:?} served by {served:?} (radio spared).");

    // 10:00 — on site in a dead zone (disconnected): work continues.
    engineer.set_connectivity(Connectivity::Disconnected);
    engineer
        .write(
            ObjectId(1),
            "WO-1: inspected; feeder clamp corroded, needs part #B12",
            &mut office,
            SimTime::from_secs(2 * 3600),
        )
        .expect("cached base available");
    println!("10:00 on site : wrote findings offline (logged for reintegration).");
    match engineer.read(ObjectId(3), &mut office) {
        Err(e) => println!("10:30 on site : WO-3 was not hoarded — {e}."),
        Ok(_) => unreachable!("unhoarded object cannot be read offline"),
    }

    // Meanwhile the office amends the same work order.
    office
        .write(ObjectId(1), "WO-1: CANCELLED — customer rescheduled")
        .expect("office is online");
    println!("11:00 office  : dispatcher cancels WO-1 (concurrent edit!).");

    // 16:00 — back at the depot: reintegration detects the conflict.
    let (report, announced) = engineer
        .reconnect_via(
            &mut bus,
            NodeId(1),
            &mut office,
            SimTime::from_secs(8 * 3600),
        )
        .expect("depot network up");
    println!(
        "\n16:00 depot   : reintegrating {} logged change(s)...",
        report.replay.len()
    );
    println!(
        "               ({} conflict notice(s) reach the dispatcher on the bus)",
        announced.len()
    );
    for outcome in &report.replay {
        match outcome {
            ReplayOutcome::Applied {
                object,
                new_version,
            } => {
                println!("  {object}: applied cleanly (now v{new_version})");
            }
            ReplayOutcome::Conflict {
                object,
                mobile_value,
                server_value,
                applied,
            } => {
                println!("  {object}: CONFLICT");
                println!("    field copy : {mobile_value:?}");
                println!("    office copy: {server_value:?}");
                println!(
                    "    policy     : server wins (field copy {})",
                    if *applied {
                        "applied anyway"
                    } else {
                        "preserved for manual merge"
                    }
                );
            }
        }
    }
    let (available, unavailable) = engineer.availability();
    println!("\nDay's availability: {available} operations served, {unavailable} unavailable.");
    println!(
        "Cache hit rate    : {:.0}%",
        engineer.cache().hit_rate() * 100.0
    );
    assert_eq!(
        report.conflicts(),
        1,
        "the concurrent cancellation conflicts"
    );
    let _ = Served::Cache; // (typed surface exercised above)
}
