//! Trader-mediated service discovery (paper §4.2.1): in an open system
//! clients find conferences through the *trading function*, not through
//! configuration files. A campus trader runs two shards; a partner
//! organisation's trader federates in over a scoped link whose QoS
//! penalty is read off the simulated topology; desktop and mobile
//! clients import the same conference type through [`ImportRequest`]s
//! and get contracts matched to what their connectivity — and the
//! federation path — can sustain.
//!
//! Run with: `cargo run --example service_discovery`

use cscw::access::rights::Rights;
use cscw::streams::qos::QosSpec;
use cscw::trader::cache::LookupCache;
use cscw::trader::error::TraderError;
use cscw::trader::federation::{DomainId, Federation};
use cscw::trader::offer::{ServiceOffer, ServiceType, SessionKind};
use cscw::trader::plan::ImportRequest;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::time::{SimDuration, SimTime};

const CAMPUS: DomainId = DomainId(0);
const PARTNER: DomainId = DomainId(1);

/// The campus trader's gateway node and the partner's, joined by a WAN
/// link in the simulated topology.
const CAMPUS_GW: NodeId = NodeId(100);
const PARTNER_GW: NodeId = NodeId(200);

fn main() {
    use cscw::trader::store::ShardedStore;

    println!("Service discovery through a trading federation");
    println!("==============================================\n");

    // --- The inter-organisation topology ------------------------------
    // The federation link's QoS penalty is not configured by hand: it is
    // read off the simulated network between the two gateways.
    let mut net = Network::new(LinkSpec::lan());
    net.set_link(
        CAMPUS_GW,
        PARTNER_GW,
        LinkSpec::wan(SimDuration::from_millis(40)),
    );
    let wan_penalty = net.link_qos(CAMPUS_GW, PARTNER_GW);

    // --- The campus trader: one domain, two shards --------------------
    let mut federation = Federation::new();
    federation.add_domain(CAMPUS, ShardedStore::new([CAMPUS_GW, NodeId(101)]));
    federation.add_domain(PARTNER, ShardedStore::new([PARTNER_GW]));
    // The partner exposes only its conference offers, read-only, and
    // every import across the link pays the WAN's latency and loss.
    federation.link_via(CAMPUS, PARTNER, "conference/", Rights::READ, wan_penalty);
    println!("federated link CAMPUS -> PARTNER charges {wan_penalty}\n");

    // --- Exporters advertise conferences ------------------------------
    let offers = [
        (
            CAMPUS,
            "conference/design-review",
            NodeId(10),
            QosSpec::video(),
        ),
        (CAMPUS, "conference/standup", NodeId(11), QosSpec::audio()),
        (
            PARTNER,
            "conference/site-walkthrough",
            NodeId(20),
            QosSpec::mobile_video(),
        ),
    ];
    for (domain, name, host, qos) in offers {
        let id = federation
            .domain_mut(domain)
            .unwrap()
            .export(
                ServiceOffer::session(ServiceType::new(name), SessionKind::Conference, qos, host)
                    .with_property("organiser", format!("node-{}", host.0)),
            )
            .expect("domain has shards");
        println!("export  {name:<32} -> domain {} offer #{}", domain.0, id.0);
    }
    let campus = federation.domain_mut(CAMPUS).unwrap();
    println!(
        "\nCampus shards hold {} offers (balance ratio {:.2}):",
        campus.len(),
        campus.balance_ratio()
    );
    for (node, load) in campus.loads() {
        println!("  shard {:>3}: {} offers", node.0, load.offers);
    }

    // --- A desktop client imports broadcast-grade video ---------------
    let wanted = ServiceType::new("conference/design-review");
    let resolution = federation
        .resolve(
            CAMPUS,
            &ImportRequest::for_type(wanted.clone())
                .qos(QosSpec::video())
                .rights(Rights::READ)
                .max_hops(2),
            None,
        )
        .expect("local offer matches");
    println!(
        "\ndesktop import: {wanted} @ node {} agreed {} fps ({} hop(s))",
        resolution.matched.offer.node, resolution.matched.agreed.throughput_fps, resolution.hops
    );

    // --- A mobile client asks for the same conference, degraded -------
    // Its radio link can only sustain mobile-grade video; negotiation
    // walks the degradation ladder instead of refusing outright.
    let resolution = federation
        .resolve(
            CAMPUS,
            &ImportRequest::for_type(wanted.clone())
                .qos(QosSpec::mobile_video())
                .rights(Rights::READ)
                .max_hops(2),
            None,
        )
        .expect("degraded contract still agreed");
    println!(
        "mobile  import: {wanted} @ node {} agreed {} fps, loss <= {:.0}%",
        resolution.matched.offer.node,
        resolution.matched.agreed.throughput_fps,
        resolution.matched.agreed.loss_bound * 100.0
    );

    // --- Federation: the partner's conference, one hop away -----------
    let remote_request = ImportRequest::for_type(ServiceType::new("conference/site-walkthrough"))
        .qos(QosSpec::mobile_video())
        .rights(Rights::READ)
        .max_hops(2);
    let remote = remote_request.service_type().clone();
    let resolution = federation
        .resolve(CAMPUS, &remote_request, None)
        .expect("scoped link admits conference/ imports");
    println!(
        "remote  import: {remote} via domain {} under scope {} ({} hop(s), penalty {})",
        resolution.domain.0, resolution.narrowed_scope, resolution.hops, resolution.penalty
    );
    println!(
        "        matched on penalized QoS: latency bound {} (advertised {})",
        resolution.matched.penalized.latency_bound, resolution.matched.offer.qos.latency_bound
    );
    // Without READ rights the same link is barred — and the trader says
    // so, rather than pretending the service doesn't exist.
    match federation.resolve(CAMPUS, &remote_request.clone().rights(Rights::NONE), None) {
        Err(TraderError::AccessDenied) => println!("        (without READ rights: access denied)"),
        other => unreachable!("expected AccessDenied, got {other:?}"),
    }

    // --- Importer-side cache: the second lookup never hits the trader -
    // Cross-link resolutions are cached under the scope the path
    // narrowed to, so they can never answer a caller whose admissible
    // scope differs.
    let mut cache = LookupCache::new(SimDuration::from_secs(30));
    let scope = resolution.narrowed_scope.clone();
    let now = SimTime::ZERO;
    for t in [now, now + SimDuration::from_secs(5)] {
        match cache.get_scoped(&remote, &scope, t) {
            Some(cached) => println!("\ncache hit : {} offer(s) served locally", cached.len()),
            None => {
                let resolved = federation
                    .resolve(CAMPUS, &remote_request, None)
                    .expect("still resolvable");
                println!(
                    "\ncache miss: asked the trader ({} cross-domain lookup(s)), caching under {}",
                    resolved.domains_queried, scope
                );
                cache.put_scoped(
                    remote.clone(),
                    scope.clone(),
                    vec![resolved.matched.offer],
                    t,
                );
            }
        }
    }
    let stats = cache.stats();
    println!(
        "cache     : {} hit(s), {} miss(es) — hit rate {:.0}%",
        stats.hits,
        stats.misses,
        cache.stats().hit_rate() * 100.0
    );
}
