//! Trader-mediated service discovery (paper §4.2.1): in an open system
//! clients find conferences through the *trading function*, not through
//! configuration files. A campus trader runs two shards; a partner
//! organisation's trader federates in over a scoped link; a desktop
//! client and a mobile client import the same conference type and get
//! contracts matched to what their connectivity can sustain.
//!
//! Run with: `cargo run --example service_discovery`

use cscw::access::rights::Rights;
use cscw::streams::qos::QosSpec;
use cscw::trader::cache::LookupCache;
use cscw::trader::federation::{DomainId, Federation, ImportError};
use cscw::trader::offer::{ServiceOffer, ServiceType, SessionKind};
use cscw::trader::select::SelectionPolicy;
use cscw::trader::store::ShardedStore;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

const CAMPUS: DomainId = DomainId(0);
const PARTNER: DomainId = DomainId(1);

fn main() {
    println!("Service discovery through a trading federation");
    println!("==============================================\n");

    // --- The campus trader: one domain, two shards --------------------
    let mut federation = Federation::new();
    federation.add_domain(CAMPUS, ShardedStore::new([NodeId(100), NodeId(101)]));
    federation.add_domain(PARTNER, ShardedStore::new([NodeId(200)]));
    // The partner exposes only its conference offers, read-only.
    federation.link(CAMPUS, PARTNER, "conference/", Rights::READ);

    // --- Exporters advertise conferences ------------------------------
    let offers = [
        (
            CAMPUS,
            "conference/design-review",
            NodeId(10),
            QosSpec::video(),
        ),
        (CAMPUS, "conference/standup", NodeId(11), QosSpec::audio()),
        (
            PARTNER,
            "conference/site-walkthrough",
            NodeId(20),
            QosSpec::mobile_video(),
        ),
    ];
    for (domain, name, host, qos) in offers {
        let id = federation
            .domain_mut(domain)
            .unwrap()
            .export(
                ServiceOffer::session(ServiceType::new(name), SessionKind::Conference, qos, host)
                    .with_property("organiser", format!("node-{}", host.0)),
            )
            .expect("domain has shards");
        println!("export  {name:<32} -> domain {} offer #{}", domain.0, id.0);
    }
    let campus = federation.domain_mut(CAMPUS).unwrap();
    println!(
        "\nCampus shards hold {} offers (balance ratio {:.2}):",
        campus.len(),
        campus.balance_ratio()
    );
    for (node, load) in campus.loads() {
        println!("  shard {:>3}: {} offers", node.0, load.offers);
    }

    // --- A desktop client imports broadcast-grade video ---------------
    let wanted = ServiceType::new("conference/design-review");
    let resolution = federation
        .import(
            CAMPUS,
            Rights::READ,
            &wanted,
            &QosSpec::video(),
            SelectionPolicy::FirstFit,
            2,
            None,
        )
        .expect("local offer matches");
    println!(
        "\ndesktop import: {wanted} @ node {} agreed {} fps ({} hop(s))",
        resolution.matched.offer.node, resolution.matched.agreed.throughput_fps, resolution.hops
    );

    // --- A mobile client asks for the same conference, degraded -------
    // Its radio link can only sustain mobile-grade video; negotiation
    // walks the degradation ladder instead of refusing outright.
    let resolution = federation
        .import(
            CAMPUS,
            Rights::READ,
            &wanted,
            &QosSpec::mobile_video(),
            SelectionPolicy::FirstFit,
            2,
            None,
        )
        .expect("degraded contract still agreed");
    println!(
        "mobile  import: {wanted} @ node {} agreed {} fps, loss <= {:.0}%",
        resolution.matched.offer.node,
        resolution.matched.agreed.throughput_fps,
        resolution.matched.agreed.loss_bound * 100.0
    );

    // --- Federation: the partner's conference, one hop away -----------
    let remote = ServiceType::new("conference/site-walkthrough");
    let resolution = federation
        .import(
            CAMPUS,
            Rights::READ,
            &remote,
            &QosSpec::mobile_video(),
            SelectionPolicy::FirstFit,
            2,
            None,
        )
        .expect("scoped link admits conference/ imports");
    println!(
        "remote  import: {remote} via domain {} ({} hop(s))",
        resolution.domain.0, resolution.hops
    );
    // Without READ rights the same link is barred — and the trader says
    // so, rather than pretending the service doesn't exist.
    match federation.import(
        CAMPUS,
        Rights::NONE,
        &remote,
        &QosSpec::mobile_video(),
        SelectionPolicy::FirstFit,
        2,
        None,
    ) {
        Err(ImportError::AccessDenied) => println!("        (without READ rights: access denied)"),
        other => unreachable!("expected AccessDenied, got {other:?}"),
    }

    // --- Importer-side cache: the second lookup never hits the trader -
    let mut cache = LookupCache::new(SimDuration::from_secs(30));
    let now = SimTime::ZERO;
    for t in [now, now + SimDuration::from_secs(5)] {
        match cache.get(&wanted, t) {
            Some(cached) => println!("\ncache hit : {} offer(s) served locally", cached.len()),
            None => {
                let resolved = federation
                    .domain_mut(CAMPUS)
                    .unwrap()
                    .offers_of_type(&wanted);
                println!(
                    "\ncache miss: asked the trader, caching {} offer(s)",
                    resolved.len()
                );
                cache.put(wanted.clone(), resolved, t);
            }
        }
    }
    let stats = cache.stats();
    println!(
        "cache     : {} hit(s), {} miss(es) — hit rate {:.0}%",
        stats.hits,
        stats.misses,
        cache.stats().hit_rate() * 100.0
    );
}
