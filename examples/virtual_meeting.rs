//! A virtual meeting: the rooms metaphor, the focus/nimbus spatial
//! model, and a replicated shared workspace combine into the paper's
//! §3.3.2 vision — "personal spaces (offices), shared spaces (meeting
//! rooms) and doors to move between such spaces", with a live shared
//! artefact replicated to every participant's node.
//!
//! Run with: `cargo run --example virtual_meeting`

use cscw::awareness::spatial::{Position, SpatialBody, SpatialModel};
use cscw::core::replicated::{replica_actor, WorkspaceReplica, WsOp};
use cscw::core::rooms::{Building, DoorState, RoomId, RoomKind};
use cscw::core::workspace::{ObjectId, SharedWorkspace};
use cscw::groupcomm::actors::GroupActor;
use cscw::groupcomm::membership::{GroupId, View};
use cscw::groupcomm::multicast::GcMsg;
use odp_access::rbac::{Effect, RoleId};
use odp_access::rights::Rights;
use odp_sim::prelude::*;

fn meeting_workspace() -> SharedWorkspace {
    let mut ws = SharedWorkspace::new();
    ws.policy_mut()
        .add_rule(RoleId(1), "shared".into(), Rights::ALL, Effect::Allow);
    for i in 0..3u32 {
        ws.policy_mut()
            .assign(odp_access::matrix::Subject(i), RoleId(1));
        ws.register_observer(NodeId(i), 0.0);
    }
    ws.create_artefact(ObjectId(1), "shared/1", "meeting agenda: (empty)");
    ws
}

fn main() {
    println!("Virtual meeting — rooms, space and a shared whiteboard");
    println!("======================================================\n");

    // ---- The building -------------------------------------------------
    let mut building = Building::new();
    building.create(RoomId(1), RoomKind::Office(0));
    building.create(RoomId(2), RoomKind::MeetingRoom);
    building
        .set_door(RoomId(1), DoorState::Ajar)
        .expect("room exists");
    building
        .place_artefact(RoomId(2), "whiteboard")
        .expect("room exists");

    for n in 0..3u32 {
        building
            .enter(NodeId(n), RoomId(2))
            .expect("meeting room is open");
    }
    println!(
        "All three participants entered the meeting room; occupants: {:?}",
        building.occupants(RoomId(2)).expect("room exists")
    );
    println!(
        "Visible work materials for n0: {:?}\n",
        building.visible_artefacts(NodeId(0))
    );

    // ---- Spatial awareness around the table ---------------------------
    let mut space = SpatialModel::new();
    space.place(
        NodeId(0),
        SpatialBody::symmetric(Position::new(0.0, 0.0), 100.0, 15.0),
    );
    space.place(
        NodeId(1),
        SpatialBody::symmetric(Position::new(3.0, 0.0), 100.0, 15.0),
    );
    space.place(
        NodeId(2),
        SpatialBody::symmetric(Position::new(0.0, 4.0), 100.0, 15.0),
    );
    println!("Around the table, n0 is aware of:");
    for (who, weight) in space.aware_of(NodeId(0)) {
        println!("  {who} with weight {weight:.2}");
    }

    // ---- The replicated whiteboard -------------------------------------
    println!("\nEach participant's node holds a replica of the whiteboard;");
    println!("edits go through totally-ordered reliable multicast:\n");
    let view = View::initial(GroupId(0), (0..3).map(NodeId));
    let mut net = Network::new(LinkSpec::wan(SimDuration::from_millis(15)));
    net.set_default_link(LinkSpec::wan(SimDuration::from_millis(15)));
    let mut sim: Sim<GcMsg<WsOp>> = SimBuilder::new(5).network(net).build();
    for i in 0..3u32 {
        sim.add_actor(
            NodeId(i),
            replica_actor(NodeId(i), view.clone(), meeting_workspace()),
        );
    }
    // Concurrent edits from all three participants.
    for (i, text) in [
        (0u32, "1. review QoS draft"),
        (1, "2. assign reviewers"),
        (2, "3. plan demo"),
    ] {
        sim.inject(
            SimTime::from_millis(20),
            NodeId(i),
            NodeId(i),
            GcMsg::AppCmd(WsOp {
                actor: i,
                object: 1,
                value: format!("agenda + {text}"),
            }),
        );
    }
    sim.run(Until::For(SimDuration::from_secs(10)));
    let mut finals = Vec::new();
    for i in 0..3u32 {
        let actor: &GroupActor<WsOp, WorkspaceReplica> =
            sim.get(ActorHandle::of(NodeId(i))).expect("replica");
        let history: Vec<String> = actor
            .app()
            .workspace()
            .history()
            .iter()
            .map(|h| format!("by n{}", h.who))
            .collect();
        println!(
            "replica {i}: {} edits applied ({})",
            actor.app().applied(),
            history.join(", ")
        );
        finals.push(history);
    }
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "replicas agree on the edit order"
    );
    println!("\nAll replicas applied the same edits in the same (total) order.");

    // ---- Leaving: doors and privacy -------------------------------------
    println!("\nThe meeting ends. n0 returns to the office (owners always may):");
    building
        .enter(NodeId(0), RoomId(1))
        .expect("owners enter their own office");
    match building.enter(NodeId(1), RoomId(1)) {
        Ok(()) => println!("n1 knocks on the ajar door; n0 is inside, so n1 is admitted."),
        Err(e) => unreachable!("occupied ajar office admits: {e}"),
    }
    building
        .set_door(RoomId(1), DoorState::Closed)
        .expect("room exists");
    match building.enter(NodeId(2), RoomId(1)) {
        Err(e) => println!("n2 tries the now-closed door: {e}."),
        Ok(()) => unreachable!("closed doors refuse non-owners"),
    }
}
