//! Quickstart: a two-author cooperative editing session showing the
//! central contrast of the paper — concurrency *transparency* (2PL
//! transactions, Figure 2a) versus cooperation *awareness* (a
//! transaction group, Figure 2b) — on the deterministic simulator.
//!
//! Run with: `cargo run --example quickstart`

use cscw::core::experiments::schemes::{run_scheme, Scheme};

fn main() {
    println!("CSCW middleware for ODP — quickstart");
    println!("====================================\n");
    println!("Two authors edit one shared document for 60 simulated seconds");
    println!("over a 10 ms network, under two concurrency-control regimes.\n");

    for scheme in [Scheme::TwoPhase, Scheme::TxGroup] {
        let sim = run_scheme(scheme, 4, 10, 42);
        let blocked = sim.metrics().counter("cc.blocked");
        let notices =
            sim.metrics().counter("cc.notices_sent") + sim.metrics().counter("cc.group_notices");
        let response = sim
            .metrics()
            .histogram("cc.response")
            .map(|h| {
                let mut h = h.clone();
                h.summary()
            })
            .expect("workload ran");
        println!("--- {} ---", scheme.label());
        println!(
            "  edits applied      : {}",
            sim.metrics().counter("cc.edits_applied")
        );
        println!("  operations blocked : {blocked}");
        println!("  awareness notices  : {notices}");
        println!("  response time      : {response}");
        println!();
    }

    println!("The transactional regime serialises the authors (walls between");
    println!("users, zero awareness); the transaction group never blocks and");
    println!("lets every edit flow to the other authors — the paper's point.");
}
