//! A media space with spatial awareness (paper §3.3.2): RAVE-style
//! office connections governed by acceptance policies, Portholes-style
//! asynchronous snapshots, and the DIVE focus/nimbus spatial model
//! weighting who is aware of whom.
//!
//! Run with: `cargo run --example media_space`

use cscw::awareness::mediaspace::{Acceptance, ConnectOutcome, ConnectionType, MediaSpace};
use cscw::awareness::portholes::Portholes;
use cscw::awareness::spatial::{Position, SpatialBody, SpatialModel};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

fn main() {
    println!("EuroPARC-style media space");
    println!("==========================\n");

    // ---- Connection policies ------------------------------------------
    let mut ms = MediaSpace::new();
    // Gordon leaves glances auto-accepted but office-shares must ask.
    ms.set_policy(NodeId(1), ConnectionType::Glance, Acceptance::Auto);
    ms.set_policy(NodeId(1), ConnectionType::OfficeShare, Acceptance::Ask);
    ms.set_policy(NodeId(1), ConnectionType::VPhone, Acceptance::Refuse);

    println!("Tom glances into Gordon's office:");
    match ms.connect(NodeId(0), NodeId(1), ConnectionType::Glance, SimTime::ZERO) {
        ConnectOutcome::Connected(id) => {
            println!("  connected immediately ({id:?}) — policy is Auto")
        }
        other => unreachable!("glance is auto: {other:?}"),
    }
    println!("Tom tries a vphone call:");
    match ms.connect(NodeId(0), NodeId(1), ConnectionType::VPhone, SimTime::ZERO) {
        ConnectOutcome::Refused => println!("  refused by policy — privacy by social protocol"),
        other => unreachable!("vphone is refused: {other:?}"),
    }
    println!("Tom requests an office-share:");
    match ms.connect(
        NodeId(0),
        NodeId(1),
        ConnectionType::OfficeShare,
        SimTime::ZERO,
    ) {
        ConnectOutcome::Pending(id) => {
            println!("  pending — Gordon is asked first...");
            let answered = ms
                .answer(NodeId(1), id, true, SimTime::from_secs(5))
                .expect("gordon is the callee");
            println!("  Gordon accepts: {answered:?}");
        }
        other => unreachable!("office-share asks: {other:?}"),
    }
    println!("Who can currently see Tom: {:?}\n", ms.who_sees(NodeId(0)));

    // ---- Portholes ------------------------------------------------------
    let mut portholes = Portholes::new(SimDuration::from_secs(300));
    portholes.subscribe(NodeId(0), NodeId(1));
    portholes.subscribe(NodeId(0), NodeId(2));
    portholes.capture(NodeId(1), "typing at workstation", SimTime::from_secs(10));
    portholes.capture(NodeId(2), "away — coffee room", SimTime::from_secs(20));
    println!("Tom's porthole wall at t=6min:");
    for (snap, stale) in portholes.wall_for(NodeId(0), SimTime::from_secs(360)) {
        println!(
            "  {}: {} {}",
            snap.who,
            snap.activity,
            if stale { "(stale)" } else { "(fresh)" }
        );
    }

    // ---- The spatial model ---------------------------------------------
    println!("\nShared virtual space (focus/nimbus):");
    let mut space = SpatialModel::new();
    space.place(
        NodeId(0),
        SpatialBody::symmetric(Position::new(0.0, 0.0), 500.0, 30.0),
    );
    space.place(
        NodeId(1),
        SpatialBody::symmetric(Position::new(10.0, 0.0), 500.0, 30.0),
    );
    space.place(
        NodeId(2),
        SpatialBody::symmetric(Position::new(200.0, 0.0), 500.0, 30.0),
    );
    for who in [NodeId(0), NodeId(2)] {
        let aware = space.aware_of(who);
        println!("  {who} is aware of: {aware:?}");
    }
    println!("\nNode 2 walks over to join the conversation...");
    space.move_to(NodeId(2), Position::new(15.0, 5.0));
    let aware = space.aware_of(NodeId(0));
    println!("  {} is now aware of: {aware:?}", NodeId(0));
    assert_eq!(aware.len(), 2, "movement changed the awareness relations");
}
