//! A collaborative raster-editing session with closed-loop placement:
//! two islands of editors take turns panning a shared tiled canvas,
//! and a telemetry-driven controller migrates the hot tiles to
//! whichever side of the WAN is doing the editing.
//!
//! Phase 1: the island-A editors work next to storage A, so every
//! access is a LAN round trip. Then the session view changes — A goes
//! home, island B picks up the canvas from across a 20 ms WAN. With
//! the controller off, island B pays the WAN on every access forever.
//! With it on, the critical paths and access counts the editors report
//! tell the controller the locus moved; it freezes each hot tile,
//! streams it to storage B in bounded chunks, re-registers its trader
//! offer, and announces the move on the awareness bus.
//!
//! Run with: `cargo run --example collab_raster`

use cscw::place::controller::{PlacementActor, ACCESS_KIND_PREFIX};
use cscw::place::scenario::{collab_raster, EditorActor, RasterConfig, RasterScenario};
use cscw::place::wire::PlaceWire;
use cscw::sim::sim::{ActorHandle, Sim, Until};
use odp_net::sim_host::SimHost;
use odp_telemetry::collector::Collector;

/// Mean phase-2 access latency (microseconds) over the run's traces.
fn phase2_mean_us(sim: &Sim<PlaceWire>, sc: &RasterScenario) -> f64 {
    let collector = Collector::from_trace(sim.trace());
    let mut total = 0u64;
    let mut n = 0u64;
    for (_, dag) in collector.traces() {
        let path = dag.critical_path();
        let (Some(root), Some(tail)) = (path.first(), path.last()) else {
            continue;
        };
        if !root.kind.starts_with(ACCESS_KIND_PREFIX) || root.opened < sc.phase2_start {
            continue;
        }
        let closed = tail.closed.unwrap_or(root.opened);
        total += closed.saturating_since(root.opened).as_micros();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        total as f64 / n as f64
    }
}

fn run(controller_on: bool) -> (Sim<PlaceWire>, RasterScenario) {
    let cfg = RasterConfig {
        controller_on,
        // A longer phase 2 than the scenario default, so the LAN
        // steady state the migrations buy dominates the mean rather
        // than just the switchover tail.
        phase_ops: 160,
        ..RasterConfig::default()
    };
    let (mut sim, sc) = collab_raster(&cfg);
    sim.run(Until::Idle);
    (sim, sc)
}

fn main() {
    println!("Collaborative raster editing with closed-loop placement");
    println!("=======================================================\n");

    let (off_sim, off_sc) = run(false);
    let (on_sim, on_sc) = run(true);

    let ctl = on_sim
        .get::<SimHost<PlacementActor>>(ActorHandle::of(on_sc.controller))
        .expect("controller")
        .inner();

    println!(
        "phase 2 (island B, across the WAN) starts at {} ms\n",
        on_sc.phase2_start.as_millis()
    );
    println!("migrations the controller committed:");
    for ev in ctl.migrations() {
        println!(
            "  t={:>5} ms  tile c{:<2}  {:?} -> {:?}  (predicted {:.0} us -> {:.0} us)",
            ev.at.as_millis(),
            ev.cluster.0,
            ev.from,
            ev.to,
            ev.cost_before_us,
            ev.cost_after_us
        );
    }

    let notices: usize = on_sc
        .editors_b
        .iter()
        .filter_map(|&e| on_sim.get::<SimHost<EditorActor>>(ActorHandle::of(e)))
        .map(|h| h.inner().notices().len())
        .sum();
    println!("\nawareness notices delivered to island-B editors: {notices}");

    let off_mean = phase2_mean_us(&off_sim, &off_sc);
    let on_mean = phase2_mean_us(&on_sim, &on_sc);
    println!("\nmean phase-2 access latency:");
    println!("  controller off : {off_mean:>9.1} us  (every access pays the WAN)");
    println!("  controller on  : {on_mean:>9.1} us");
    println!(
        "\nthe controller cut phase-2 critical paths by {:.1}x once the",
        off_mean / on_mean
    );
    println!("hot tiles followed the editors to their side of the WAN.");
}
