//! Co-authoring: a Quilt-style annotated document plus a GROVE-style
//! real-time OT editing session — the two generations of co-authoring
//! support the paper surveys (§3.2.3).
//!
//! Run with: `cargo run --example co_authoring`

use cscw::concurrency::jupiter::{OtClient, OtServer};
use cscw::concurrency::ot::CharOp;
use cscw::core::document::{AnnotationKind, QuiltDocument};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;

fn main() {
    println!("Co-authoring a report");
    println!("=====================\n");

    // ---- Asynchronous phase: Quilt-style annotation ------------------
    let mut doc = QuiltDocument::new("The quick brown fox jumps over the lazy dog.");
    println!("Base document: {:?}\n", doc.base());

    let comment = doc
        .annotate(
            NodeId(1),
            AnnotationKind::Comment,
            (4, 9),
            "is 'quick' the right register here?",
            SimTime::from_secs(60),
        )
        .expect("valid anchor");
    doc.reply(comment, NodeId(2), "I prefer 'swift' — suggesting it.")
        .expect("annotation exists");
    let suggestion = doc
        .annotate(
            NodeId(2),
            AnnotationKind::Suggestion,
            (4, 9),
            "swift",
            SimTime::from_secs(120),
        )
        .expect("valid anchor");
    println!("Reviewer annotations visible to author:");
    for ann in doc.visible_to(NodeId(0)) {
        println!(
            "  [{:?}] by {} at {:?}: {}",
            ann.kind, ann.author, ann.range, ann.body
        );
        for (who, text) in &ann.replies {
            println!("      ↳ {who}: {text}");
        }
    }
    doc.accept_suggestion(suggestion).expect("is a suggestion");
    println!("\nAfter accepting the suggestion: {:?}", doc.base());
    println!("Revisions applied: {}\n", doc.revisions());

    // ---- Synchronous phase: GROVE-style concurrent editing -----------
    println!("Now both authors type concurrently (OT, immediate local response):");
    let base = doc.base().to_owned();
    let mut server = OtServer::new(&base);
    server.add_client(1);
    server.add_client(2);
    let mut alice = OtClient::new(1, &base);
    let mut bob = OtClient::new(2, &base);

    // Concurrent edits before any exchange.
    let m1 = alice
        .local_edit(CharOp::Insert { pos: 0, ch: '!' })
        .expect("in bounds");
    let m2 = bob
        .local_edit(CharOp::Delete {
            pos: base.chars().count() - 1,
        })
        .expect("in bounds");
    println!("  alice (local): {:?}", alice.text());
    println!("  bob   (local): {:?}", bob.text());

    // Exchange through the server.
    for (to, msg) in server.client_message(1, m1).expect("known client") {
        if to == 2 {
            bob.server_message(msg);
        }
    }
    for (to, msg) in server.client_message(2, m2).expect("known client") {
        if to == 1 {
            alice.server_message(msg);
        }
    }
    println!("\nAfter convergence:");
    println!("  alice : {:?}", alice.text());
    println!("  bob   : {:?}", bob.text());
    println!("  server: {:?}", server.text());
    assert_eq!(alice.text(), bob.text());
    assert_eq!(alice.text(), server.text());
    println!("\nAll replicas converged without locking anyone out.");
}
