//! Desktop conferencing with live media (paper §3.2.2 + §4.2.2): a
//! collaboration-transparent whiteboard behind floor control, next to a
//! collaboration-aware editor with telepointers — plus a QoS-managed
//! video stream between the two sites that degrades mid-meeting and is
//! renegotiated.
//!
//! Run with: `cargo run --example desktop_conference`

use cscw::awareness::bus::EventBus;
use cscw::core::conference::{AwareConference, TransparentConference};
use cscw::streams::actors::{SinkActor, SourceActor, StreamMsg};
use cscw::streams::media::{MediaKind, MediaSink, MediaSource, StreamId};
use cscw::streams::monitor::QosMonitor;
use cscw::streams::qos::QosSpec;
use odp_concurrency::floor::FloorPolicy;
use odp_sim::prelude::*;

fn main() {
    println!("Desktop conference");
    println!("==================\n");

    // ---- Collaboration-transparent: shared single-user whiteboard ----
    // Floor grants and releases announce themselves on the
    // cooperation-event bus so every seat sees whose turn it is.
    let mut bus = EventBus::new();
    let mut shared = TransparentConference::new(FloorPolicy::RequestQueue);
    for n in 0..3 {
        shared.join(NodeId(n));
        bus.register(NodeId(n), 0.0);
    }
    let grants = shared.request_floor_via(&mut bus, NodeId(0), SimTime::ZERO);
    println!(
        "Floor granted to node 0; {} peers notified on the bus.",
        grants.len()
    );
    shared.request_floor_via(&mut bus, NodeId(1), SimTime::ZERO); // queued
    let out = shared
        .input(NodeId(0), "draw architecture box", SimTime::from_secs(1))
        .expect("holder may draw");
    println!(
        "Transparent whiteboard: node 0 draws; output multicast to {} screens.",
        out.len()
    );
    match shared.input(NodeId(1), "draw too", SimTime::from_secs(2)) {
        Err(e) => println!("Node 1 tries to draw concurrently: {e} (turn-taking enforced)"),
        Ok(_) => unreachable!("floor control must refuse"),
    }
    shared.release_floor_via(&mut bus, NodeId(0), SimTime::from_secs(3));
    println!(
        "Floor passes to node {:?} on release.\n",
        shared.floor_holder()
    );

    // ---- Collaboration-aware: relaxed WYSIWIS -------------------------
    let mut aware = AwareConference::new();
    for n in 0..3 {
        aware.join(NodeId(n));
    }
    aware.scroll(NodeId(0), 0).expect("member");
    aware.scroll(NodeId(1), 40).expect("member");
    let watchers = aware.point(NodeId(1), (12, 7)).expect("member");
    aware.input(NodeId(0), "edit title").expect("member");
    aware.input(NodeId(1), "edit section 3").expect("member");
    println!("Aware editor: members hold different viewports (0 vs 40),");
    println!(
        "node 1's telepointer renders on {} peer screens,",
        watchers.len()
    );
    println!(
        "and {} inputs interleaved without a floor.\n",
        aware.shared_log().len()
    );

    // ---- The video channel with QoS management ------------------------
    println!("Conference video (25 fps contract, link degrades at t=5s):");
    let mut net = Network::new(LinkSpec::lan());
    net.set_default_link(LinkSpec::lan());
    let mut sim: Sim<StreamMsg> = SimBuilder::new(7).network(net).build();
    let contract = QosSpec::video();
    sim.add_actor(
        NodeId(0),
        SourceActor::new(
            MediaSource::new(StreamId(0), MediaKind::Video, 25, 4_000),
            vec![NodeId(1)],
            contract,
        ),
    );
    sim.add_actor(
        NodeId(1),
        SinkActor::new(
            MediaSink::new(StreamId(0), SimDuration::from_millis(120)),
            QosMonitor::new(contract, SimDuration::from_secs(1)),
            NodeId(0),
        ),
    );
    sim.schedule_net_change(SimTime::from_secs(5), |net| {
        net.set_link(
            NodeId(0),
            NodeId(1),
            LinkSpec {
                latency: SimDuration::from_millis(350),
                jitter: SimDuration::from_millis(90),
                bytes_per_sec: Some(35_000),
                loss: 0.05,
            },
        );
    });
    sim.run(Until::For(SimDuration::from_secs(30)));
    let source: &SourceActor = sim.get(ActorHandle::of(NodeId(0))).expect("source");
    let sink: &SinkActor = sim.get(ActorHandle::of(NodeId(1))).expect("sink");
    println!(
        "  violations reported : {}",
        sim.metrics().counter("stream.violation_reports")
    );
    println!("  renegotiations      : {}", source.renegotiations());
    println!("  final contract      : {}", source.contract());
    println!(
        "  media integrity     : {:.1}%",
        sink.sink().integrity() * 100.0
    );
    println!("\nThe sink detected the degradation end-to-end, informed the");
    println!("source, and the stream renegotiated down instead of dying.");
}
