//! The prescriptiveness ladder (paper §3.2.1 + §4.1): the same work item
//! handled by a Coordinator-style conversation for action, a Domino-style
//! routed office procedure with a rework loop, and informal free-form
//! coordination — showing exactly what each model forces and forbids.
//!
//! Run with: `cargo run --example workflow_models`

use cscw::workflow::models::{CoordinationModel, FreeFormModel, WorkAction, WorkItem};
use cscw::workflow::routes::{Next, RouteStep, RoutedProcedure, StepId};
use cscw::workflow::speechact::{Conversation, Party, SpeechAct};
use std::collections::BTreeMap;

fn main() {
    println!("Coordination models compared");
    println!("============================\n");

    // ---- Coordinator: a conversation for action ------------------------
    println!("1. Speech-act conversation (Coordinator):");
    let customer = Party(0);
    let performer = Party(1);
    let mut convo = Conversation::new(customer, performer);
    convo
        .act(customer, SpeechAct::Request)
        .expect("customer opens");
    // The performer tries to just... do the work and declare it done.
    match convo.act(performer, SpeechAct::DeclareComplete) {
        Err(rej) => println!("   deviation rejected: {rej}"),
        Ok(_) => unreachable!("the protocol forbids this"),
    }
    convo
        .act(performer, SpeechAct::CounterOffer)
        .expect("performer negotiates");
    convo
        .act(customer, SpeechAct::AcceptCounter)
        .expect("customer agrees");
    convo
        .act(performer, SpeechAct::ReportCompletion)
        .expect("work reported");
    convo
        .act(customer, SpeechAct::DeclareComplete)
        .expect("customer satisfied");
    println!(
        "   completed after {} explicit speech acts ({} deviation rejected)\n",
        convo.acts_taken(),
        convo.rejections()
    );

    // ---- Domino: a routed procedure with a rework loop -----------------
    println!("2. Routed office procedure (Domino):");
    let steps = vec![
        RouteStep {
            id: StepId(0),
            role: Party(1),
            description: "prepare expense claim".into(),
            routes: BTreeMap::from([("submitted".to_owned(), Next::Step(StepId(1)))]),
        },
        RouteStep {
            id: StepId(1),
            role: Party(2),
            description: "manager approval".into(),
            routes: BTreeMap::from([
                ("approved".to_owned(), Next::Step(StepId(2))),
                ("rejected".to_owned(), Next::Step(StepId(0))),
            ]),
        },
        RouteStep {
            id: StepId(2),
            role: Party(3),
            description: "finance files it".into(),
            routes: BTreeMap::from([("filed".to_owned(), Next::Done)]),
        },
    ];
    let mut claim = RoutedProcedure::new(steps, StepId(0)).expect("valid route");
    claim.perform(Party(1), "submitted").expect("clerk submits");
    claim
        .perform(Party(2), "rejected")
        .expect("manager bounces it");
    println!(
        "   manager rejected; route loops back to {}",
        claim.current().expect("looped").description
    );
    claim.perform(Party(1), "submitted").expect("resubmitted");
    claim.perform(Party(2), "approved").expect("approved");
    claim.perform(Party(3), "filed").expect("filed");
    println!(
        "   done; step 0 performed {} times; audit trail has {} entries\n",
        claim.times_performed(StepId(0)),
        claim.trail().len()
    );

    // ---- Free-form ------------------------------------------------------
    println!("3. Free-form coordination (Object Lens spirit):");
    let mut free = FreeFormModel::new((0..2).map(WorkItem));
    // Anyone does anything, in any order — including helping a colleague.
    free.attempt(Party(2), WorkAction::Finish(WorkItem(1)))
        .expect("no rules");
    free.attempt(Party(1), WorkAction::Finish(WorkItem(0)))
        .expect("no rules");
    let s = free.stats();
    println!(
        "   complete: {}; forced acts: {}; rejections: {}",
        free.is_complete(),
        s.forced_acts,
        s.rejections
    );
    println!("\nThe ladder: free-form forces nothing; the procedure prescribes");
    println!("order and roles; the speech-act model additionally makes every");
    println!("coordination move an explicit, typed utterance — the paper's");
    println!("warning about overly prescriptive models, in running code.");
}
