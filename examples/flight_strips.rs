//! The Lancaster air-traffic-control study (paper §2.3): an electronic
//! flight-progress board where *manual* strip placement draws the team's
//! attention — the ethnographic finding that automating the "tedious"
//! task would destroy.
//!
//! Run with: `cargo run --example flight_strips`

use cscw::core::flightstrips::{Beacon, Callsign, FlightProgressBoard, FlightStrip, PlacementMode};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

fn strip(cs: &str, eta_min: u64, level: u32) -> FlightStrip {
    FlightStrip {
        callsign: Callsign(cs.to_owned()),
        eta: SimTime::from_secs(eta_min * 60),
        level,
        instructions: Vec::new(),
    }
}

fn main() {
    println!("Flight progress board — sector TALLA/POL");
    println!("=========================================\n");
    let mut board = FlightProgressBoard::new();
    let pol = Beacon("POL".to_owned());
    let talla = Beacon("TALLA".to_owned());
    board.add_rack(pol.clone());
    board.add_rack(talla.clone());

    // The assistant files incoming strips automatically (silent).
    for (cs, eta, fl) in [
        ("BAW123", 12, 330),
        ("EIN456", 18, 350),
        ("KLM789", 25, 330),
    ] {
        board
            .place(
                NodeId(0),
                pol.clone(),
                strip(cs, eta, fl),
                PlacementMode::Automatic,
                None,
                SimTime::ZERO,
            )
            .expect("rack exists");
    }
    println!("After automatic filing, rack POL (ETA order):");
    for s in board.rack(&pol).expect("rack exists") {
        println!(
            "  {:<8} FL{} ETA t+{}min",
            s.callsign,
            s.level,
            s.eta.as_millis() / 60_000
        );
    }
    println!(
        "Attention events so far: {} (automation is silent)\n",
        board.attention().len()
    );

    // A controller spots trouble: AFR999 is coming in close behind BAW123
    // at the same level. She places the strip *by hand*, cocked out at
    // the top of the rack.
    board
        .place(
            NodeId(2),
            pol.clone(),
            strip("AFR999", 13, 330),
            PlacementMode::Manual,
            Some(0),
            SimTime::from_secs(30),
        )
        .expect("rack exists");
    println!("Controller n2 manually places AFR999 at the top of the rack.");
    println!("Attention events now: {}", board.attention().len());
    for ev in board.attention() {
        println!(
            "  team sees: {} moved {} in rack {}",
            ev.by, ev.callsign, ev.beacon
        );
    }

    // "At a glance": loading and emerging problems.
    println!("\nAt a glance:");
    for (beacon, load) in board.loading() {
        println!("  rack {beacon}: {load} strips");
    }
    let conflicts = board.conflicts(SimDuration::from_secs(180));
    println!("\nEmerging problems (same level, <3 min separation):");
    for (beacon, a, b) in &conflicts {
        println!("  {a} vs {b} over {beacon}");
    }
    assert!(
        !conflicts.is_empty(),
        "the manual placement flagged a real conflict"
    );

    // Resolve it: amend the strip with an instruction.
    board
        .amend(
            &pol,
            &Callsign("AFR999".to_owned()),
            "climb FL350, resequence behind EIN456",
        )
        .expect("strip exists");
    println!("\nInstruction recorded on AFR999's strip:");
    let rack = board.rack(&pol).expect("rack exists");
    let s = rack
        .iter()
        .find(|s| s.callsign.0 == "AFR999")
        .expect("strip present");
    for i in &s.instructions {
        println!("  -> {i}");
    }
}
