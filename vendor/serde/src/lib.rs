//! A tiny, offline drop-in for the subset of the `serde` facade this
//! workspace uses: the `Serialize` / `Deserialize` names for `use`
//! statements and `#[derive(..)]` attributes. The workspace derives the
//! traits on its data types to document wire-format intent, but never
//! serialises through them (there is no format crate in the approved
//! dependency set), so the derives expand to nothing and the traits are
//! pure markers.

/// Marker for types whose values could be serialised.
pub trait Serialize {}

/// Marker for types whose values could be deserialised.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserialisable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
