//! A small, offline drop-in for the subset of the `proptest` API this
//! workspace uses: the `proptest!` macro, `prop_assert*` macros, range /
//! tuple / collection / regex-string strategies, `any::<T>()`,
//! `prop_map`, `Just`, `proptest::char::range`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! - **Deterministic**: every test derives its RNG seed from its fully
//!   qualified name plus the case index, so runs are reproducible without
//!   a persistence file.
//! - **No shrinking**: a failing case reports its generated inputs (all
//!   strategy values are `Debug`) and re-raises the panic unshrunk.
//! - **Regression files are not consulted**: `.proptest-regressions`
//!   seeds are opaque to this implementation; known edge cases should
//!   also be pinned as plain `#[test]`s.

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    pub use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Number of cases to run per property (a subset of the real
    /// proptest config).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many generated cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies, seeded from the test name and case
    /// index so every run of the suite generates the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Creates the RNG for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64),
            }
        }

        /// The underlying generator.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.inner
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace samples.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng().gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.rng().gen::<f64>()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary + core::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A uniform strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod char {
    //! Character strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A uniform strategy over an inclusive character range.
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Uniform characters in `[lo, hi]` (both inclusive).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn new_value(&self, rng: &mut TestRng) -> char {
            // Resample on the (never-used-here) surrogate gap.
            loop {
                let v = rng.rng().gen_range(self.lo..self.hi + 1);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod collection {
    //! `vec` and `btree_set` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An admissible collection size: fixed or drawn from a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.rng().gen_range(self.lo..self.hi)
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of `element` values with a target size drawn from `size`.
    /// The produced set may be smaller if the element strategy cannot
    /// supply enough distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + core::fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 20 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod string {
    //! Strings generated from a restricted regex dialect.
    //!
    //! Supported: literal characters, character classes `[a-z0-9 .!?\n]`
    //! (ranges, literals, the escapes `\n`, `\t`, `\r`, `\\`, `\-`,
    //! `\]`), and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the last
    //! two capped at 32 repetitions). Anything else panics with a clear
    //! message — extend the parser rather than silently mis-generating.

    use crate::test_runner::TestRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    enum Atom {
        Lit(char),
        Class(Vec<char>),
    }

    #[derive(Debug, Clone)]
    pub(crate) struct Pattern {
        parts: Vec<(Atom, usize, usize)>, // atom, min, max (inclusive)
    }

    pub(crate) fn parse(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut members = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(c) = chars.next() else {
                            panic!("unterminated character class in regex {pattern:?}");
                        };
                        match c {
                            ']' => break,
                            '\\' => {
                                let e = chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in regex {pattern:?}")
                                });
                                let lit = match e {
                                    'n' => '\n',
                                    't' => '\t',
                                    'r' => '\r',
                                    other => other,
                                };
                                members.push(lit);
                                prev = Some(lit);
                            }
                            '-' => {
                                // A range if flanked by members, else literal.
                                match (prev, chars.peek().copied()) {
                                    (Some(lo), Some(hi)) if hi != ']' => {
                                        chars.next();
                                        assert!(
                                            lo <= hi,
                                            "inverted range {lo}-{hi} in regex {pattern:?}"
                                        );
                                        for v in (lo as u32 + 1)..=(hi as u32) {
                                            if let Some(ch) = char::from_u32(v) {
                                                members.push(ch);
                                            }
                                        }
                                        prev = None;
                                    }
                                    _ => {
                                        members.push('-');
                                        prev = Some('-');
                                    }
                                }
                            }
                            other => {
                                members.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    assert!(
                        !members.is_empty(),
                        "empty character class in regex {pattern:?}"
                    );
                    Atom::Class(members)
                }
                '\\' => {
                    let e = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                    Atom::Lit(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    })
                }
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    panic!("unsupported regex construct {c:?} in {pattern:?}")
                }
                other => Atom::Lit(other),
            };
            // Quantifier?
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => {
                            let lo = m.trim().parse::<usize>().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{spec}}} in regex {pattern:?}")
                            });
                            let hi = n.trim().parse::<usize>().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{spec}}} in regex {pattern:?}")
                            });
                            assert!(lo <= hi, "inverted quantifier in regex {pattern:?}");
                            (lo, hi)
                        }
                        None => {
                            let n = spec.trim().parse::<usize>().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{spec}}} in regex {pattern:?}")
                            });
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                _ => (1, 1),
            };
            parts.push((atom, min, max));
        }
        Pattern { parts }
    }

    impl Pattern {
        pub(crate) fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (atom, min, max) in &self.parts {
                let n = if min == max {
                    *min
                } else {
                    rng.rng().gen_range(*min..max + 1)
                };
                for _ in 0..n {
                    match atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(members) => {
                            let i = rng.rng().gen_range(0usize..members.len());
                            out.push(members[i]);
                        }
                    }
                }
            }
            out
        }
    }
}

/// Re-exports matching `use proptest::prelude::*;` in real proptest.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(test_name, case);
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&::std::format!("{:?}, ", &__value));
                    let $arg = __value;
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let ::std::result::Result::Err(payload) = outcome {
                    ::std::eprintln!(
                        "proptest {test_name} failed at case {case} with inputs: {__inputs}"
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

pub mod strategy {
    //! The [`Strategy`] trait and the built-in strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type (must be `Debug` so failing cases can be
        /// reported).
        type Value: core::fmt::Debug;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: core::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `f`, resampling (up to a cap, after
        /// which the last sample is returned regardless — no global
        /// rejection bookkeeping).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: core::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            let mut last = self.inner.new_value(rng);
            for _ in 0..1000 {
                if (self.f)(&last) {
                    return last;
                }
                last = self.inner.new_value(rng);
            }
            panic!(
                "prop_filter({:?}) rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi {
                        return lo;
                    }
                    // Widen to u128 arithmetic via the Range impl where
                    // possible; +1 cannot overflow after the lo==hi check
                    // for every type narrower than u128.
                    let span_end = hi;
                    let v = rng.rng().gen_range(lo..span_end);
                    // Give the endpoint equal weight by a second draw.
                    if rng.rng().gen_range(0u64..(span_end as u64).wrapping_sub(lo as u64).max(1) + 1) == 0 {
                        hi
                    } else {
                        v
                    }
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.rng().gen::<f64>() * (hi - lo)
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::parse(self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-z]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::new_value(&"[a-zA-Z .!?\n]{0,200}", &mut rng);
            assert!(t.len() <= 200);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphabetic() || " .!?\n".contains(c)));
            let u = Strategy::new_value(&"[a-z ]{10,60}", &mut rng);
            assert!((10..=60).contains(&u.len()));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let gen = |_run: u32| {
            let mut rng = TestRng::for_case("det", 0); // same seed every run
            Strategy::new_value(&(0u64..1000, 0.0f64..1.0), &mut rng)
        };
        assert_eq!(gen(0).0, gen(1).0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_itself_works(
            a in 0u32..10,
            v in prop::collection::vec(0u64..5, 1..4),
            s in "[a-z]{0,4}",
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(s.len() <= 4);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }
}
