//! A tiny, offline drop-in for the subset of the `rand` crate API this
//! workspace uses: `SmallRng` seeded from a `u64`, `RngCore::next_u64`,
//! `Rng::gen::<f64>()` and `Rng::gen_range` over half-open integer
//! ranges. The generator is xoshiro256++ seeded via splitmix64, so runs
//! are deterministic and of good statistical quality.
//!
//! This crate exists because the build environment is fully offline; it
//! is not the real `rand` and implements nothing beyond what the
//! workspace calls.

use core::ops::Range;

/// Core trait for random number generators.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Rejection-free modulo is fine here: span is tiny relative
                // to 2^64 in all workspace uses, and determinism is what
                // matters, not perfect uniformity at the 2^-64 level.
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
