//! A small, offline drop-in for the subset of the `criterion` API this
//! workspace uses: `Criterion::bench_function`, `benchmark_group` +
//! `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples of an adaptively chosen iteration batch,
//! and reports min / median / mean per-iteration wall-clock time as a
//! plain line on stdout. There is no statistical analysis, plotting, or
//! baseline persistence — the goal is that `cargo bench` produces
//! honest comparable numbers without network-fetched dependencies.

use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Drives closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.default_sample_size, f);
        self
    }

    /// Starts a named group whose settings apply to its benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Warm-up + batch sizing: grow the batch until one sample takes at
    // least ~2ms or the batch reaches 1M iterations, so cheap routines
    // are measured over enough work to beat timer resolution.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1_000_000 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {name:<40} min {} median {} mean {} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:8.3} us", secs * 1e6)
    } else {
        format!("{:8.3} ns", secs * 1e9)
    }
}

/// Declares a group function invoking each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group unless `--test` is passed
/// (cargo's bench-target smoke mode) — then it only checks they exist.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false bench binaries with
            // `--test`; keep that mode fast by skipping measurement.
            let smoke = ::std::env::args().any(|a| a == "--test");
            if smoke {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("add", |b| b.iter(|| black_box(2u64 * 2)));
        g.finish();
    }
}
