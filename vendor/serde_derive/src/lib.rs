//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` stub. The workspace only ever names the traits in
//! derives (never serialises through them), so the expansion is empty;
//! `#[serde(...)]` attributes are accepted and ignored.

use proc_macro::TokenStream;

/// Accepts the item and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the item and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
